package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"kspdg/internal/workload"
)

// ReadJSON loads a BENCH_<name>.json metrics record written by WriteJSON.
func ReadJSON(path string) (Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Metrics{}, err
	}
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return Metrics{}, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if m.Name == "" {
		return Metrics{}, fmt.Errorf("bench: %s has no experiment name", path)
	}
	return m, nil
}

// SuiteFromMetrics configures a Suite to replay a baseline record's exact
// parameters, so a regression check compares apples to apples regardless of
// the checker's own defaults.
func SuiteFromMetrics(m Metrics) (*Suite, error) {
	s := DefaultSuite()
	switch m.Scale {
	case "tiny":
		s.Scale = workload.ScaleTiny
	case "small":
		s.Scale = workload.ScaleSmall
	case "medium":
		s.Scale = workload.ScaleMedium
	default:
		return nil, fmt.Errorf("bench: baseline has unknown scale %q", m.Scale)
	}
	s.Nq = m.Nq
	s.Xi = m.Xi
	s.K = m.K
	s.Seed = m.Seed
	s.Workers = m.Workers
	return s, nil
}

// RegressionError reports a fresh run slower than the committed baseline
// allows.
type RegressionError struct {
	Name      string
	Baseline  int64 // baseline ns/op
	Fresh     int64 // fresh ns/op
	Tolerance float64
}

func (e *RegressionError) Error() string {
	return fmt.Sprintf("bench: %s regressed: %.3fms/op vs baseline %.3fms/op (%.2fx, tolerance %.2fx)",
		e.Name, float64(e.Fresh)/1e6, float64(e.Baseline)/1e6, e.Ratio(), e.Tolerance)
}

// Ratio is fresh over baseline ns/op.
func (e *RegressionError) Ratio() float64 {
	return float64(e.Fresh) / float64(e.Baseline)
}

// CheckRegression compares a fresh run against its committed baseline: the
// fresh ns/op must stay within tolerance times the baseline's.  tolerance is
// honored as given (1.0 is a strict no-slowdown gate); only an unset value
// (<= 0) falls back to the default 1.5.  Refresh the committed baseline to
// bank a win — the gate only ratchets against slowdowns.
func CheckRegression(baseline, fresh Metrics, tolerance float64) error {
	if tolerance <= 0 {
		tolerance = 1.5
	}
	if baseline.Name != fresh.Name {
		return fmt.Errorf("bench: comparing %q against baseline %q", fresh.Name, baseline.Name)
	}
	if baseline.NsPerOp <= 0 {
		return fmt.Errorf("bench: baseline %s has no ns/op", baseline.Name)
	}
	if float64(fresh.NsPerOp) > float64(baseline.NsPerOp)*tolerance {
		return &RegressionError{
			Name:      baseline.Name,
			Baseline:  baseline.NsPerOp,
			Fresh:     fresh.NsPerOp,
			Tolerance: tolerance,
		}
	}
	return nil
}

// AllocRegressionError reports a fresh run allocating more than the
// committed baseline allows.
type AllocRegressionError struct {
	Name      string
	Nq        int
	Baseline  uint64 // baseline heap allocations over the run
	Fresh     uint64 // fresh heap allocations over the run
	Tolerance float64
}

func (e *AllocRegressionError) Error() string {
	perOp := func(total uint64) float64 {
		if e.Nq <= 0 {
			return float64(total)
		}
		return float64(total) / float64(e.Nq)
	}
	return fmt.Sprintf("bench: %s alloc regression: %.0f allocs/query vs baseline %.0f allocs/query (%.2fx, tolerance %.2fx)",
		e.Name, perOp(e.Fresh), perOp(e.Baseline), e.Ratio(), e.Tolerance)
}

// Ratio is fresh over baseline allocation count.
func (e *AllocRegressionError) Ratio() float64 {
	return float64(e.Fresh) / float64(e.Baseline)
}

// CheckAllocRegression gates the fresh run's heap allocation count against
// the committed baseline's.  Because SuiteFromMetrics replays the baseline's
// exact parameters, the totals are directly comparable and their ratio
// equals the allocs/query ratio.  Allocation counts are far less noisy than
// wall-clock time, so the default tolerance is tighter than the ns/op
// gate's; an explicit tolerance <= 0 falls back to the default 1.25.
// Baselines recorded before allocation tracking carry a zero count and are
// skipped rather than failed.
func CheckAllocRegression(baseline, fresh Metrics, tolerance float64) error {
	if tolerance <= 0 {
		tolerance = 1.25
	}
	if baseline.Name != fresh.Name {
		return fmt.Errorf("bench: comparing %q against baseline %q", fresh.Name, baseline.Name)
	}
	if baseline.Allocs == 0 {
		return nil
	}
	if float64(fresh.Allocs) > float64(baseline.Allocs)*tolerance {
		return &AllocRegressionError{
			Name:      baseline.Name,
			Nq:        baseline.Nq,
			Baseline:  baseline.Allocs,
			Fresh:     fresh.Allocs,
			Tolerance: tolerance,
		}
	}
	return nil
}
