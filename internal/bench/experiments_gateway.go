package bench

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/dtlp"
	"kspdg/internal/gateway"
	"kspdg/internal/partition"
	"kspdg/internal/serve"
	"kspdg/internal/workload"
)

// gatewayRate is the open-loop arrival rate (requests/second) of the gateway
// experiment.  Open-loop means the schedule does not slow down when the
// server falls behind — queueing delay shows up as latency, which is the
// point.
const gatewayRate = 150.0

// gatewayBatchShare is the fraction of requests sent with X-Priority: batch.
const gatewayBatchShare = 5 // every 5th request

// GatewayBench measures the HTTP front door end to end: an in-process
// cluster behind a serve.Server behind the gateway on a real loopback
// listener, driven by a seeded open-loop Poisson query stream.  Reported
// latencies include JSON decode, admission, queueing, the full engine query
// and the response round trip — the numbers an external client would see.
func (s *Suite) GatewayBench() (*Table, error) {
	ds, err := workload.BuiltinDataset("NY", s.Scale)
	if err != nil {
		return nil, err
	}
	part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
	if err != nil {
		return nil, err
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: s.Xi})
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(index, cluster.Config{NumWorkers: s.Workers})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	srv := serve.New(index, cl.Provider(), serve.Options{Workers: 8, Engine: s.engineOpts()})
	defer srv.Close()
	gw := gateway.New(srv, gateway.Options{
		Rate:           -1, // measuring latency, not per-key admission
		DefaultTimeout: 10 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: gw}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	arrivals := workload.GenerateOpenLoop(ds.Graph, s.Nq, gatewayRate, s.Seed)

	type outcome struct {
		class   string
		status  int
		latency time.Duration
	}
	outcomes := make([]outcome, len(arrivals))
	client := &http.Client{}
	start := time.Now()
	var wg sync.WaitGroup
	for i, a := range arrivals {
		wg.Add(1)
		go func(i int, a workload.OpenLoopArrival) {
			defer wg.Done()
			if d := a.At - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			body := fmt.Sprintf(`{"source":%d,"target":%d,"k":%d}`, a.Query.Source, a.Query.Target, s.K)
			req, err := http.NewRequest("POST", base+"/v1/ksp", bytes.NewReader([]byte(body)))
			if err != nil {
				outcomes[i] = outcome{class: "interactive", status: -1}
				return
			}
			cls := "interactive"
			if i%gatewayBatchShare == 0 {
				cls = "batch"
				req.Header.Set("X-Priority", "batch")
			}
			issued := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				outcomes[i] = outcome{class: cls, status: -1}
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes[i] = outcome{class: cls, status: resp.StatusCode, latency: time.Since(issued)}
		}(i, a)
	}
	wg.Wait()
	elapsed := time.Since(start)

	table := &Table{
		Columns: []string{"class", "requests", "ok", "errors", "p50", "p95", "p99"},
	}
	for _, cls := range []string{"interactive", "batch"} {
		var lats []time.Duration
		total, ok, errs := 0, 0, 0
		for _, o := range outcomes {
			if o.class != cls {
				continue
			}
			total++
			if o.status == http.StatusOK {
				ok++
				lats = append(lats, o.latency)
			} else {
				errs++
			}
		}
		table.AddRow(cls, total, ok, errs,
			percentile(lats, 0.50), percentile(lats, 0.95), percentile(lats, 0.99))
	}
	stats := srv.Stats()
	table.Notes = append(table.Notes,
		fmt.Sprintf("open-loop Poisson arrivals at %.0f/s over real loopback HTTP: %d queries (k=%d) in %v",
			gatewayRate, s.Nq, s.K, elapsed.Round(time.Millisecond)),
		fmt.Sprintf("in-process cluster, %d workers; serve: %d served, %d cache hits, %d coalesced, %d non-converged",
			s.Workers, stats.QueriesServed, stats.CacheHits, stats.Coalesced, stats.NonConverged),
		"latency includes JSON decode, admission, queue wait, engine execution and the response round trip")
	return table, nil
}

// percentile returns the q-quantile of the (unsorted) latency sample, by the
// nearest-rank method.
func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
