// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 6) against the scale-model
// datasets.  Each experiment produces a Table whose rows mirror the series
// the paper plots; absolute numbers differ from the paper (the substrate is a
// laptop-scale simulator, see DESIGN.md), but the shapes — who wins, by what
// factor, where the crossovers are — are expected to match.
//
// The cmd/kspbench binary exposes every experiment on the command line;
// EXPERIMENTS.md records a captured run next to the paper's reported trends.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/workload"
)

// Table is one experiment's output: a titled grid of rows.
type Table struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fms", float64(v.Microseconds())/1000)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Suite runs experiments at a chosen scale.
type Suite struct {
	// Scale selects the size of the scale-model datasets.
	Scale workload.Scale
	// Nq is the base number of queries per batch (the paper uses 1000; the
	// scale-model default is smaller).
	Nq int
	// Xi is the default number of bounding paths per boundary pair.
	Xi int
	// K is the default k.
	K int
	// Seed drives query generation and traffic perturbation.
	Seed int64
	// Workers is the default simulated cluster size (the paper uses 10).
	Workers int
}

// DefaultSuite returns a Suite with defaults sized for a laptop run.
func DefaultSuite() *Suite {
	return &Suite{Scale: workload.ScaleTiny, Nq: 60, Xi: 3, K: 2, Seed: 42, Workers: 4}
}

// experiment describes one runnable experiment.
type experiment struct {
	name  string
	title string
	run   func(*Suite) (*Table, error)
}

// registry lists every experiment in report order.
var registry = []experiment{
	{"table1", "Statistics on the road network datasets (Table 1)", (*Suite).Table1},
	{"table3", "Number of vertices in skeleton graph with varying z (Table 3)", (*Suite).Table3},
	{"fig15", "DTLP construction cost vs z (NY, Figure 15)", func(s *Suite) (*Table, error) { return s.constructionCost("NY", "fig15") }},
	{"fig16", "DTLP construction cost vs z (COL, Figure 16)", func(s *Suite) (*Table, error) { return s.constructionCost("COL", "fig16") }},
	{"fig17", "DTLP construction cost vs z (FLA, Figure 17)", func(s *Suite) (*Table, error) { return s.constructionCost("FLA", "fig17") }},
	{"fig18", "DTLP construction cost vs z, directed vs undirected (CUSA, Figure 18)", (*Suite).Fig18},
	{"fig19", "DTLP maintenance cost, directed vs undirected (CUSA, Figure 19)", (*Suite).Fig19},
	{"fig20", "DTLP build and maintenance time vs graph size (Figure 20)", (*Suite).Fig20},
	{"fig21", "Update throughput and latency vs graph size (Figure 21)", (*Suite).Fig21},
	{"fig22", "Maintenance cost vs number of bounding paths ξ (Figure 22)", (*Suite).Fig22},
	{"fig23", "Maintenance cost vs fraction of changing edges α (Figure 23)", (*Suite).Fig23},
	{"fig24", "Number of iterations vs ξ (Figure 24)", (*Suite).Fig24},
	{"fig25", "Number of iterations vs weight variation range τ (Figure 25)", (*Suite).Fig25},
	{"fig26", "Number of iterations vs k (Figure 26)", (*Suite).Fig26},
	{"fig27", "Number of iterations vs α (Figure 27)", (*Suite).Fig27},
	{"fig28", "Query processing time vs z and k (NY, Figure 28)", func(s *Suite) (*Table, error) { return s.processingTime("NY", "fig28") }},
	{"fig29", "Query processing time vs z and k (COL, Figure 29)", func(s *Suite) (*Table, error) { return s.processingTime("COL", "fig29") }},
	{"fig30", "Query processing time vs z and k (FLA, Figure 30)", func(s *Suite) (*Table, error) { return s.processingTime("FLA", "fig30") }},
	{"fig31", "Query processing time vs z and k (CUSA, Figure 31)", func(s *Suite) (*Table, error) { return s.processingTime("CUSA", "fig31") }},
	{"fig32", "Query processing time vs number of queries Nq (Figure 32)", (*Suite).Fig32},
	{"fig33", "Query processing time vs ξ (Figure 33)", (*Suite).Fig33},
	{"fig34", "Query processing time vs τ (Figure 34)", (*Suite).Fig34},
	{"fig35", "KSP-DG vs FindKSP vs Yen, time vs Nq (NY, Figure 35)", func(s *Suite) (*Table, error) { return s.comparisonVsNq("NY", "fig35") }},
	{"fig36", "KSP-DG vs FindKSP vs Yen, time vs Nq (COL, Figure 36)", func(s *Suite) (*Table, error) { return s.comparisonVsNq("COL", "fig36") }},
	{"fig37", "KSP-DG vs FindKSP vs Yen, time vs Nq (FLA, Figure 37)", func(s *Suite) (*Table, error) { return s.comparisonVsNq("FLA", "fig37") }},
	{"fig38", "KSP-DG vs FindKSP vs Yen, time vs Nq (CUSA, Figure 38)", func(s *Suite) (*Table, error) { return s.comparisonVsNq("CUSA", "fig38") }},
	{"fig39", "KSP-DG vs FindKSP vs Yen, time vs k (FLA, Figure 39)", (*Suite).Fig39},
	{"fig40", "KSP-DG vs CANDS, processing time for k=1 (Figure 40)", (*Suite).Fig40},
	{"fig41", "KSP-DG vs CANDS, maintenance time (Figure 41)", (*Suite).Fig41},
	{"fig42", "DTLP building time vs number of servers (Figure 42)", (*Suite).Fig42},
	{"fig43", "Query processing time vs number of servers (Figure 43)", (*Suite).Fig43},
	{"fig44", "Query processing time vs number of servers for several k (NY, Figure 44)", (*Suite).Fig44},
	{"fig45", "Scalability comparison vs number of servers (NY, Figure 45)", (*Suite).Fig45},
	{"fig46", "Relative speedups vs number of servers (Figure 46)", (*Suite).Fig46},
	{"loadbalance", "Per-worker load spread (Section 6.6)", (*Suite).LoadBalance},
	{"rpc", "Serialized vs pipelined vs batched master-worker transport", (*Suite).RPCTransports},
	{"scaling", "Queries/s vs worker parallelism on the batched rpc workload", (*Suite).Scaling},
	{"gateway", "HTTP gateway latency percentiles under open-loop Poisson load", (*Suite).GatewayBench},
	{"ablation-vfrag", "Ablation: vfrag bound vs edge-count bound (DESIGN.md #1)", (*Suite).AblationVfrag},
	{"ablation-mfptree", "Ablation: EP-Index vs MFP-tree compression (DESIGN.md #3)", (*Suite).AblationMFPTree},
	{"ablation-paircache", "Ablation: partial-path reuse across reference paths (DESIGN.md #4)", (*Suite).AblationPairCache},
}

// Experiments lists the available experiment names in report order.
func Experiments() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Describe returns the human-readable title of an experiment.
func Describe(name string) (string, bool) {
	for _, e := range registry {
		if e.name == name {
			return e.title, true
		}
	}
	return "", false
}

// Run executes the named experiment.
func (s *Suite) Run(name string) (*Table, error) {
	for _, e := range registry {
		if e.name == name {
			t, err := e.run(s)
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", name, err)
			}
			t.Name = e.name
			t.Title = e.title
			return t, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (available: %s)", name, strings.Join(Experiments(), ", "))
}

// ----- shared helpers -----

// setup holds the per-dataset objects most experiments need.
type setup struct {
	ds     *workload.Dataset
	part   *partition.Partition
	index  *dtlp.Index
	engine *core.Engine
}

// engineOpts returns the query options the harness uses everywhere.  The
// iteration cap mirrors the paper's observation that KSP-DG needs at most a
// few tens of iterations in practice (Figures 24-27); it keeps pathological
// low-ξ/high-τ corner cases from dominating a sweep's wall-clock time.
func (s *Suite) engineOpts() core.Options {
	return core.Options{MaxIterations: 80}
}

// load builds the dataset, partition, index, and a local engine.
func (s *Suite) load(name string, z, xi int) (*setup, error) {
	ds, err := workload.BuiltinDataset(name, s.Scale)
	if err != nil {
		return nil, err
	}
	if z <= 0 {
		z = ds.DefaultZ
	}
	if xi <= 0 {
		xi = s.Xi
	}
	part, err := partition.PartitionGraph(ds.Graph, z)
	if err != nil {
		return nil, err
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: xi})
	if err != nil {
		return nil, err
	}
	return &setup{ds: ds, part: part, index: index, engine: core.NewEngine(index, nil, s.engineOpts())}, nil
}

// zSweep returns a small sweep of subgraph sizes around the dataset default,
// standing in for the paper's per-dataset z ranges.
func (s *Suite) zSweep(ds *workload.Dataset) []int {
	base := ds.DefaultZ
	return []int{base / 2, base * 3 / 4, base, base * 3 / 2, base * 2}
}

// queries generates a deterministic batch of Nq queries for the dataset.
func (s *Suite) queries(g *graph.Graph, n int) []workload.Query {
	if n <= 0 {
		n = s.Nq
	}
	return workload.NewQueryGenerator(g.NumVertices(), s.Seed).Batch(n)
}

// runBatchLocal processes the queries on a single engine and returns the
// total wall-clock time.
func runBatchLocal(engine *core.Engine, queries []workload.Query, k int) (time.Duration, []core.Result, error) {
	start := time.Now()
	results := make([]core.Result, len(queries))
	for i, q := range queries {
		res, err := engine.Query(q.Source, q.Target, k)
		if err != nil {
			return 0, nil, err
		}
		results[i] = res
	}
	return time.Since(start), results, nil
}

// runBatchCluster processes the queries on an in-process cluster.
func runBatchCluster(c *cluster.Cluster, queries []workload.Query, k int) (time.Duration, []core.Result, error) {
	start := time.Now()
	results, err := c.ProcessBatch(queries, k, core.Options{MaxIterations: 80})
	return time.Since(start), results, err
}

// avgIterations averages the iteration counts of a result set.
func avgIterations(results []core.Result) float64 {
	if len(results) == 0 {
		return 0
	}
	total := 0
	for _, r := range results {
		total += r.Iterations
	}
	return float64(total) / float64(len(results))
}

// perturb runs one traffic snapshot on the graph and returns the batch.
func (s *Suite) perturb(g *graph.Graph, alpha, tau float64, seed int64) ([]graph.WeightUpdate, error) {
	tm := workload.NewTrafficModel(alpha, tau, seed)
	return tm.Step(g)
}

// spread returns (max-min)/max over a slice of ints, or 0 for empty input.
func spread(values []int) float64 {
	if len(values) == 0 {
		return 0
	}
	mn, mx := values[0], values[0]
	for _, v := range values {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx == 0 {
		return 0
	}
	return float64(mx-mn) / float64(mx)
}
