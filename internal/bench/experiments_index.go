package bench

import (
	"fmt"
	"time"

	"kspdg/internal/dtlp"
	"kspdg/internal/partition"
	"kspdg/internal/workload"
)

// Table1 reproduces Table 1: per-dataset vertex/edge counts, number of
// subgraphs (and subgraphs with more than five boundary vertices) at the
// default z, and the skeleton graph size.
func (s *Suite) Table1() (*Table, error) {
	t := &Table{Columns: []string{"network", "#vertices", "#edges", "z", "#subgraphs", "(nb>5)", "Gλ"}}
	for _, name := range workload.DatasetNames() {
		st, err := s.load(name, 0, s.Xi)
		if err != nil {
			return nil, err
		}
		pstats := st.part.ComputeStats()
		xstats := st.index.Stats()
		t.AddRow(name, st.ds.Graph.NumVertices(), st.ds.Graph.NumEdges(), st.ds.DefaultZ,
			pstats.NumSubgraphs, pstats.SubgraphsWithOver5Bnd, xstats.SkeletonVertices)
	}
	t.Notes = append(t.Notes, "scale-model datasets; paper sizes are 264K-14M vertices (see DESIGN.md substitutions)")
	return t, nil
}

// Table3 reproduces Table 3: the number of skeleton graph vertices as z
// varies, per dataset.
func (s *Suite) Table3() (*Table, error) {
	t := &Table{Columns: []string{"network", "z", "Gλ vertices"}}
	for _, name := range workload.DatasetNames() {
		ds, err := workload.BuiltinDataset(name, s.Scale)
		if err != nil {
			return nil, err
		}
		for _, z := range s.zSweep(ds) {
			part, err := partition.PartitionGraph(ds.Graph, z)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, z, len(part.BoundaryVertices()))
		}
	}
	t.Notes = append(t.Notes, "skeleton size shrinks as z grows, matching Table 3's trend")
	return t, nil
}

// constructionCost reproduces Figures 15-17: DTLP construction time and
// memory versus the subgraph size z for one dataset.
func (s *Suite) constructionCost(name, fig string) (*Table, error) {
	ds, err := workload.BuiltinDataset(name, s.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: []string{"z", "build time", "EP-Index entries", "bounding paths", "approx bytes", "Gλ vertices"}}
	for _, z := range s.zSweep(ds) {
		part, err := partition.PartitionGraph(ds.Graph, z)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		index, err := dtlp.Build(part, dtlp.Config{Xi: s.Xi})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		st := index.Stats()
		t.AddRow(z, elapsed, st.EPIndexEntries, st.NumBoundingPaths, st.ApproxBytes, st.SkeletonVertices)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("ξ=%d; paper shows build time first dropping then rising with z", s.Xi))
	return t, nil
}

// Fig18 reproduces Figure 18: CUSA construction cost with z sweep, comparing
// the undirected and directed variants of the network.
func (s *Suite) Fig18() (*Table, error) {
	t := &Table{Columns: []string{"variant", "z", "build time", "EP-Index entries", "approx bytes"}}
	for _, directed := range []bool{false, true} {
		ds, err := workload.BuiltinDataset("CUSA", s.Scale)
		if err != nil {
			return nil, err
		}
		g := ds.Graph
		if directed {
			// Regenerate the CUSA scale model as a directed network.
			dds, err := workload.Generate(workload.RoadNetworkSpec{
				Name: "CUSA-directed", Width: 30, Height: 20, DiagonalFraction: 0.15,
				MissingFraction: 0.25, MinWeight: 1, MaxWeight: 10, Directed: true, Seed: 404, DefaultZ: ds.DefaultZ,
			})
			if err != nil {
				return nil, err
			}
			if s.Scale != workload.ScaleTiny {
				dds, err = workload.Generate(workload.RoadNetworkSpec{
					Name: "CUSA-directed", Width: 110, Height: 80, DiagonalFraction: 0.15,
					MissingFraction: 0.25, MinWeight: 1, MaxWeight: 10, Directed: true, Seed: 404, DefaultZ: ds.DefaultZ,
				})
				if err != nil {
					return nil, err
				}
			}
			g = dds.Graph
		}
		label := "undirected"
		if directed {
			label = "directed"
		}
		for _, z := range []int{ds.DefaultZ, ds.DefaultZ * 3 / 2} {
			part, err := partition.PartitionGraph(g, z)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			index, err := dtlp.Build(part, dtlp.Config{Xi: s.Xi})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			st := index.Stats()
			t.AddRow(label, z, elapsed, st.EPIndexEntries, st.ApproxBytes)
		}
	}
	t.Notes = append(t.Notes, "directed variant indexes both directions per boundary pair, roughly doubling build cost (Figure 18)")
	return t, nil
}

// Fig19 reproduces Figure 19: maintenance time of DTLP for the directed and
// undirected CUSA variants under a heavy update batch (α=50%, τ=50%).
func (s *Suite) Fig19() (*Table, error) {
	t := &Table{Columns: []string{"variant", "z", "updated edges", "maintenance time"}}
	variants := []struct {
		label    string
		directed bool
	}{{"undirected", false}, {"directed", true}}
	for _, v := range variants {
		spec := workload.RoadNetworkSpec{
			Name: "CUSA", Width: 30, Height: 20, DiagonalFraction: 0.15, MissingFraction: 0.25,
			MinWeight: 1, MaxWeight: 10, Directed: v.directed, Seed: 404, DefaultZ: 40,
		}
		if s.Scale != workload.ScaleTiny {
			spec.Width, spec.Height, spec.DefaultZ = 110, 80, 120
		}
		ds, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
		if err != nil {
			return nil, err
		}
		index, err := dtlp.Build(part, dtlp.Config{Xi: s.Xi})
		if err != nil {
			return nil, err
		}
		tm := workload.NewTrafficModel(0.5, 0.5, s.Seed)
		tm.MirrorDirected = true
		batch, err := tm.Step(ds.Graph)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := index.ApplyUpdates(batch); err != nil {
			return nil, err
		}
		t.AddRow(v.label, ds.DefaultZ, len(batch), time.Since(start))
	}
	t.Notes = append(t.Notes, "α=50%, τ=50%; directed maintenance is roughly double the undirected cost (Figure 19)")
	return t, nil
}

// Fig20 reproduces Figure 20: DTLP build and maintenance time versus graph
// size Ng (five growing graphs, ξ=10 scaled down, α=50%).
func (s *Suite) Fig20() (*Table, error) {
	t := &Table{Columns: []string{"Ng (vertices)", "build time", "maintenance time"}}
	dims := [][2]int{{10, 8}, {14, 10}, {18, 12}, {22, 14}, {26, 16}}
	if s.Scale != workload.ScaleTiny {
		dims = [][2]int{{40, 30}, {55, 40}, {70, 50}, {85, 60}, {100, 70}}
	}
	for i, d := range dims {
		ds, err := workload.Generate(workload.RoadNetworkSpec{
			Name: fmt.Sprintf("G%d", i), Width: d[0], Height: d[1], DiagonalFraction: 0.15,
			MissingFraction: 0.25, MinWeight: 1, MaxWeight: 10, Seed: s.Seed + int64(i), DefaultZ: 30,
		})
		if err != nil {
			return nil, err
		}
		part, err := partition.PartitionGraph(ds.Graph, 30)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		index, err := dtlp.Build(part, dtlp.Config{Xi: s.Xi})
		if err != nil {
			return nil, err
		}
		buildTime := time.Since(start)
		batch, err := s.perturb(ds.Graph, 0.5, 0.5, s.Seed)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		if err := index.ApplyUpdates(batch); err != nil {
			return nil, err
		}
		t.AddRow(ds.Graph.NumVertices(), buildTime, time.Since(start))
	}
	t.Notes = append(t.Notes, "both build and maintenance grow roughly linearly with graph size (Figure 20)")
	return t, nil
}

// Fig21 reproduces Figure 21: update throughput and per-update latency as
// the graph grows, applying repeated rounds of weight changes.
func (s *Suite) Fig21() (*Table, error) {
	t := &Table{Columns: []string{"Ng (vertices)", "rounds", "updates", "throughput (updates/s)", "latency/update"}}
	dims := [][2]int{{10, 8}, {16, 12}, {22, 16}, {28, 20}}
	rounds := 20
	if s.Scale != workload.ScaleTiny {
		dims = [][2]int{{40, 30}, {60, 45}, {80, 60}, {100, 75}}
		rounds = 10
	}
	for i, d := range dims {
		ds, err := workload.Generate(workload.RoadNetworkSpec{
			Name: fmt.Sprintf("G%d", i), Width: d[0], Height: d[1], DiagonalFraction: 0.15,
			MissingFraction: 0.25, MinWeight: 1, MaxWeight: 10, Seed: s.Seed + int64(i), DefaultZ: 30,
		})
		if err != nil {
			return nil, err
		}
		part, err := partition.PartitionGraph(ds.Graph, 30)
		if err != nil {
			return nil, err
		}
		index, err := dtlp.Build(part, dtlp.Config{Xi: s.Xi})
		if err != nil {
			return nil, err
		}
		tm := workload.NewTrafficModel(0.5, 0.5, s.Seed)
		totalUpdates := 0
		var totalTime time.Duration
		for r := 0; r < rounds; r++ {
			batch, err := tm.Step(ds.Graph)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := index.ApplyUpdates(batch); err != nil {
				return nil, err
			}
			totalTime += time.Since(start)
			totalUpdates += len(batch)
		}
		throughput := float64(totalUpdates) / totalTime.Seconds()
		latency := time.Duration(0)
		if totalUpdates > 0 {
			latency = totalTime / time.Duration(totalUpdates)
		}
		t.AddRow(ds.Graph.NumVertices(), rounds, totalUpdates, throughput, latency)
	}
	t.Notes = append(t.Notes, "throughput and per-update latency stay roughly flat across graph sizes (Figure 21)")
	return t, nil
}

// Fig22 reproduces Figure 22: maintenance time versus ξ (α=50%, τ=50%).
func (s *Suite) Fig22() (*Table, error) {
	t := &Table{Columns: []string{"network", "ξ", "bounding paths", "maintenance time"}}
	for _, name := range []string{"NY", "COL", "FLA"} {
		ds, err := workload.BuiltinDataset(name, s.Scale)
		if err != nil {
			return nil, err
		}
		for _, xi := range []int{1, 2, 4, 6, 8} {
			part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
			if err != nil {
				return nil, err
			}
			index, err := dtlp.Build(part, dtlp.Config{Xi: xi})
			if err != nil {
				return nil, err
			}
			batch, err := s.perturb(ds.Graph, 0.5, 0.5, s.Seed+int64(xi))
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := index.ApplyUpdates(batch); err != nil {
				return nil, err
			}
			t.AddRow(name, xi, index.Stats().NumBoundingPaths, time.Since(start))
		}
	}
	t.Notes = append(t.Notes, "maintenance cost grows with ξ and flattens once pairs run out of distinct vfrag classes (Figure 22)")
	return t, nil
}

// Fig23 reproduces Figure 23: maintenance time versus the fraction α of
// edges changing weight (ξ=10 scaled, τ=50%).
func (s *Suite) Fig23() (*Table, error) {
	t := &Table{Columns: []string{"network", "α", "updated edges", "maintenance time"}}
	for _, name := range []string{"NY", "COL", "FLA"} {
		for _, alpha := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
			st, err := s.load(name, 0, s.Xi)
			if err != nil {
				return nil, err
			}
			batch, err := s.perturb(st.ds.Graph, alpha, 0.5, s.Seed)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := st.index.ApplyUpdates(batch); err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%.0f%%", alpha*100), len(batch), time.Since(start))
		}
	}
	t.Notes = append(t.Notes, "maintenance time grows with α as more bounding path distances must be refreshed (Figure 23)")
	return t, nil
}
