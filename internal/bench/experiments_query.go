package bench

import (
	"fmt"

	"kspdg/internal/workload"
)

// iterationSweep measures the average number of KSP-DG iterations per query
// for a given configuration.
func (s *Suite) iterationSweep(name string, xi int, alpha, tau float64, k, nq int) (float64, error) {
	st, err := s.load(name, 0, xi)
	if err != nil {
		return 0, err
	}
	// Apply one traffic snapshot so lower bounds are no longer exact.
	if alpha > 0 {
		batch, err := s.perturb(st.ds.Graph, alpha, tau, s.Seed)
		if err != nil {
			return 0, err
		}
		if err := st.index.ApplyUpdates(batch); err != nil {
			return 0, err
		}
	}
	queries := s.queries(st.ds.Graph, nq)
	_, results, err := runBatchLocal(st.engine, queries, k)
	if err != nil {
		return 0, err
	}
	return avgIterations(results), nil
}

// iterK returns the scaled-down stand-in for the paper's k=50 used by the
// iteration-count figures.
func (s *Suite) iterK() int {
	if s.Scale == workload.ScaleTiny {
		return 4
	}
	return 8
}

// iterNq returns the number of queries used by the iteration figures.
func (s *Suite) iterNq() int {
	n := s.Nq / 4
	if n < 8 {
		n = 8
	}
	return n
}

// Fig24 reproduces Figure 24: number of iterations versus ξ.
func (s *Suite) Fig24() (*Table, error) {
	t := &Table{Columns: []string{"network", "ξ", "avg iterations"}}
	for _, name := range workload.DatasetNames() {
		for _, xi := range []int{1, 2, 4, 6} {
			avg, err := s.iterationSweep(name, xi, 0.3, 0.5, s.iterK(), s.iterNq())
			if err != nil {
				return nil, err
			}
			t.AddRow(name, xi, avg)
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("k=%d, α=30%%, τ=50%%; iterations drop as ξ tightens the lower bounds (Figure 24); counts are capped at 80 per query", s.iterK()))
	return t, nil
}

// Fig25 reproduces Figure 25: number of iterations versus the weight
// variation range τ.
func (s *Suite) Fig25() (*Table, error) {
	t := &Table{Columns: []string{"network", "τ", "avg iterations"}}
	for _, name := range workload.DatasetNames() {
		for _, tau := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			avg, err := s.iterationSweep(name, 1, 0.3, tau, s.iterK(), s.iterNq())
			if err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%.0f%%", tau*100), avg)
		}
	}
	t.Notes = append(t.Notes, "larger weight variation loosens the lower bounds and increases iterations (Figure 25)")
	return t, nil
}

// Fig26 reproduces Figure 26: number of iterations versus k.
func (s *Suite) Fig26() (*Table, error) {
	t := &Table{Columns: []string{"network", "k", "avg iterations"}}
	ks := []int{1, 2, 4, 6, 8}
	for _, name := range workload.DatasetNames() {
		for _, k := range ks {
			avg, err := s.iterationSweep(name, 1, 0.3, 0.5, k, s.iterNq())
			if err != nil {
				return nil, err
			}
			t.AddRow(name, k, avg)
		}
	}
	t.Notes = append(t.Notes, "iterations grow slowly with k (Figure 26)")
	return t, nil
}

// Fig27 reproduces Figure 27: number of iterations versus α.
func (s *Suite) Fig27() (*Table, error) {
	t := &Table{Columns: []string{"network", "α", "avg iterations"}}
	for _, name := range workload.DatasetNames() {
		for _, alpha := range []float64{0.2, 0.3, 0.4, 0.5} {
			avg, err := s.iterationSweep(name, 1, alpha, 0.9, s.iterK(), s.iterNq())
			if err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%.0f%%", alpha*100), avg)
		}
	}
	t.Notes = append(t.Notes, "k scaled down from the paper's 50; τ=90%, ξ=1 (Figure 27)")
	return t, nil
}

// processingTime reproduces Figures 28-31: total processing time of a query
// batch versus z for several k, one dataset per figure.
func (s *Suite) processingTime(name, fig string) (*Table, error) {
	ds, err := workload.BuiltinDataset(name, s.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: []string{"z", "k", "batch time", "avg iterations"}}
	queries := s.queries(ds.Graph, s.Nq)
	for _, z := range s.zSweep(ds) {
		for _, k := range []int{2, 4, 6} {
			st, err := s.load(name, z, s.Xi)
			if err != nil {
				return nil, err
			}
			elapsed, results, err := runBatchLocal(st.engine, queries, k)
			if err != nil {
				return nil, err
			}
			t.AddRow(z, k, elapsed, avgIterations(results))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Nq=%d, ξ=%d; time first decreases then increases with z and grows linearly with k (Figures 28-31)", len(queries), s.Xi))
	return t, nil
}

// Fig32 reproduces Figure 32: total processing time versus the number of
// concurrent queries Nq, per dataset.
func (s *Suite) Fig32() (*Table, error) {
	t := &Table{Columns: []string{"network", "Nq", "batch time"}}
	for _, name := range workload.DatasetNames() {
		st, err := s.load(name, 0, s.Xi)
		if err != nil {
			return nil, err
		}
		for _, factor := range []int{1, 2, 4, 8} {
			nq := s.Nq / 2 * factor
			queries := s.queries(st.ds.Graph, nq)
			elapsed, _, err := runBatchLocal(st.engine, queries, s.K)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, nq, elapsed)
		}
	}
	t.Notes = append(t.Notes, "processing time grows approximately linearly with Nq (Figure 32)")
	return t, nil
}

// Fig33 reproduces Figure 33: processing time versus ξ for several k (NY).
func (s *Suite) Fig33() (*Table, error) {
	t := &Table{Columns: []string{"ξ", "k", "batch time", "avg iterations"}}
	nq := s.Nq / 2
	for _, xi := range []int{1, 2, 4, 6} {
		st, err := s.load("NY", 0, xi)
		if err != nil {
			return nil, err
		}
		batch, err := s.perturb(st.ds.Graph, 0.3, 0.9, s.Seed)
		if err != nil {
			return nil, err
		}
		if err := st.index.ApplyUpdates(batch); err != nil {
			return nil, err
		}
		queries := s.queries(st.ds.Graph, nq)
		for _, k := range []int{2, 4, 6} {
			elapsed, results, err := runBatchLocal(st.engine, queries, k)
			if err != nil {
				return nil, err
			}
			t.AddRow(xi, k, elapsed, avgIterations(results))
		}
	}
	t.Notes = append(t.Notes, "larger ξ reduces iterations and processing time, most visibly for large k (Figure 33)")
	return t, nil
}

// Fig34 reproduces Figure 34: processing time versus the weight variation
// range τ for several k (NY).
func (s *Suite) Fig34() (*Table, error) {
	t := &Table{Columns: []string{"τ", "k", "batch time", "avg iterations"}}
	nq := s.Nq / 2
	for _, tau := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		st, err := s.load("NY", 0, s.Xi)
		if err != nil {
			return nil, err
		}
		batch, err := s.perturb(st.ds.Graph, 0.3, tau, s.Seed)
		if err != nil {
			return nil, err
		}
		if err := st.index.ApplyUpdates(batch); err != nil {
			return nil, err
		}
		queries := s.queries(st.ds.Graph, nq)
		for _, k := range []int{2, 6} {
			elapsed, results, err := runBatchLocal(st.engine, queries, k)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%.0f%%", tau*100), k, elapsed, avgIterations(results))
		}
	}
	t.Notes = append(t.Notes, "processing time rises slowly with τ as reference paths lose pruning power (Figure 34)")
	return t, nil
}
