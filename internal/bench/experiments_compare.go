package bench

import (
	"fmt"
	"time"

	"kspdg/internal/baseline"
	"kspdg/internal/cluster"
	"kspdg/internal/workload"
)

// comparisonVsNq reproduces Figures 35-38: total processing time of KSP-DG,
// FindKSP, and Yen for growing numbers of queries on one dataset.
func (s *Suite) comparisonVsNq(name, fig string) (*Table, error) {
	st, err := s.load(name, 0, s.Xi)
	if err != nil {
		return nil, err
	}
	// KSP-DG runs on the simulated cluster (its intended deployment); the
	// centralized baselines process the batch sequentially, as in the paper.
	c, err := cluster.New(st.index, cluster.Config{NumWorkers: s.Workers, QueryBolts: s.Workers})
	if err != nil {
		return nil, err
	}
	yen := baseline.NewYen(st.ds.Graph)
	find := baseline.NewFindKSP(st.ds.Graph)
	t := &Table{Columns: []string{"Nq", fmt.Sprintf("KSP-DG (%d workers)", s.Workers), "FindKSP", "Yen"}}
	for _, factor := range []int{1, 2, 4} {
		nq := s.Nq / 2 * factor
		queries := s.queries(st.ds.Graph, nq)

		kspdgTime, _, err := runBatchCluster(c, queries, s.K)
		if err != nil {
			return nil, err
		}
		findTime, err := runBaselineBatch(find, queries, s.K)
		if err != nil {
			return nil, err
		}
		yenTime, err := runBaselineBatch(yen, queries, s.K)
		if err != nil {
			return nil, err
		}
		t.AddRow(nq, kspdgTime, findTime, yenTime)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("k=%d, ξ=%d; the paper reports KSP-DG winning with the flattest growth — the crossover needs large networks, see EXPERIMENTS.md (Figures 35-38)", s.K, s.Xi))
	return t, nil
}

// runBaselineBatch processes a query batch with a baseline algorithm.
func runBaselineBatch(alg baseline.Algorithm, queries []workload.Query, k int) (time.Duration, error) {
	start := time.Now()
	for _, q := range queries {
		if _, err := alg.Query(q.Source, q.Target, k); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// Fig39 reproduces Figure 39: comparison of the three algorithms as k grows
// on the FLA dataset.
func (s *Suite) Fig39() (*Table, error) {
	st, err := s.load("FLA", 0, s.Xi)
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(st.index, cluster.Config{NumWorkers: s.Workers, QueryBolts: s.Workers})
	if err != nil {
		return nil, err
	}
	yen := baseline.NewYen(st.ds.Graph)
	find := baseline.NewFindKSP(st.ds.Graph)
	queries := s.queries(st.ds.Graph, s.Nq/2)
	t := &Table{Columns: []string{"k", fmt.Sprintf("KSP-DG (%d workers)", s.Workers), "FindKSP", "Yen"}}
	for _, k := range []int{2, 4, 6, 8} {
		kspdgTime, _, err := runBatchCluster(c, queries, k)
		if err != nil {
			return nil, err
		}
		findTime, err := runBaselineBatch(find, queries, k)
		if err != nil {
			return nil, err
		}
		yenTime, err := runBaselineBatch(yen, queries, k)
		if err != nil {
			return nil, err
		}
		t.AddRow(k, kspdgTime, findTime, yenTime)
	}
	t.Notes = append(t.Notes, "paper: Yen grows fastest with k while KSP-DG and FindKSP grow slowly; at small scales the centralized baselines keep a lower absolute cost (Figure 39, see EXPERIMENTS.md)")
	return t, nil
}

// Fig40 reproduces Figure 40: KSP-DG versus CANDS on single shortest path
// queries (k=1) across the three smaller networks.
func (s *Suite) Fig40() (*Table, error) {
	t := &Table{Columns: []string{"network", "KSP-DG (k=1)", "CANDS (k=1)"}}
	for _, name := range []string{"NY", "COL", "FLA"} {
		st, err := s.load(name, 0, s.Xi)
		if err != nil {
			return nil, err
		}
		cands, err := baseline.NewCANDS(st.ds.Graph, st.ds.DefaultZ)
		if err != nil {
			return nil, err
		}
		queries := s.queries(st.ds.Graph, s.Nq)
		kspdgTime, _, err := runBatchLocal(st.engine, queries, 1)
		if err != nil {
			return nil, err
		}
		candsTime, err := runBaselineBatch(cands, queries, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, kspdgTime, candsTime)
	}
	t.Notes = append(t.Notes, "paper: CANDS's exact shortest-path index wins k=1 queries, while its maintenance loses badly (Figures 40-41); see EXPERIMENTS.md for how this reproduction differs at small scale")
	return t, nil
}

// Fig41 reproduces Figure 41: maintenance time of DTLP (KSP-DG) versus the
// CANDS shortest-path index under a heavy update batch (α=50%, τ=50%).
func (s *Suite) Fig41() (*Table, error) {
	t := &Table{Columns: []string{"network", "updated edges", "KSP-DG maintenance", "CANDS maintenance"}}
	for _, name := range []string{"NY", "COL", "FLA"} {
		st, err := s.load(name, 0, s.Xi)
		if err != nil {
			return nil, err
		}
		cands, err := baseline.NewCANDS(st.ds.Graph, st.ds.DefaultZ)
		if err != nil {
			return nil, err
		}
		batch, err := s.perturb(st.ds.Graph, 0.5, 0.5, s.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := st.index.ApplyUpdates(batch); err != nil {
			return nil, err
		}
		kspdgTime := time.Since(start)
		start = time.Now()
		if err := cands.ApplyUpdates(batch); err != nil {
			return nil, err
		}
		candsTime := time.Since(start)
		t.AddRow(name, len(batch), kspdgTime, candsTime)
	}
	t.Notes = append(t.Notes, "CANDS must recompute the indexed shortest paths of every touched subgraph, so its maintenance cost dominates (Figure 41)")
	return t, nil
}
