// Package kspdg's top-level benchmarks: one testing.B benchmark per
// table/figure group of the paper's evaluation, each exercising the kernel
// that dominates that experiment.  The full parameter sweeps (every series of
// every figure) are produced by cmd/kspbench; these benchmarks give per-
// operation costs that `go test -bench` can track over time.
package kspdg_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kspdg/internal/baseline"
	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/mfptree"
	"kspdg/internal/partition"
	"kspdg/internal/serve"
	"kspdg/internal/shortest"
	"kspdg/internal/workload"
)

// benchSetup caches per-dataset fixtures across benchmarks.
type benchSetup struct {
	ds    *workload.Dataset
	part  *partition.Partition
	index *dtlp.Index
}

var setups = map[string]*benchSetup{}

func load(b *testing.B, name string) *benchSetup {
	b.Helper()
	if s, ok := setups[name]; ok {
		return s
	}
	ds, err := workload.BuiltinDataset(name, workload.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
	if err != nil {
		b.Fatal(err)
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: 3})
	if err != nil {
		b.Fatal(err)
	}
	s := &benchSetup{ds: ds, part: part, index: index}
	setups[name] = s
	return s
}

// BenchmarkTable1PartitionStats covers Table 1: partitioning a dataset and
// computing its statistics.
func BenchmarkTable1PartitionStats(b *testing.B) {
	ds, err := workload.BuiltinDataset("NY", workload.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
		if err != nil {
			b.Fatal(err)
		}
		_ = part.ComputeStats()
	}
}

// BenchmarkTable3SkeletonSize covers Table 3: skeleton size under a varying z.
func BenchmarkTable3SkeletonSize(b *testing.B) {
	ds, err := workload.BuiltinDataset("COL", workload.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	zs := []int{12, 24, 48}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := zs[i%len(zs)]
		part, err := partition.PartitionGraph(ds.Graph, z)
		if err != nil {
			b.Fatal(err)
		}
		_ = len(part.BoundaryVertices())
	}
}

// BenchmarkFig15to18DTLPBuild covers Figures 15-18: DTLP construction per
// dataset.
func BenchmarkFig15to18DTLPBuild(b *testing.B) {
	for _, name := range workload.DatasetNames() {
		b.Run(name, func(b *testing.B) {
			ds, err := workload.BuiltinDataset(name, workload.ScaleTiny)
			if err != nil {
				b.Fatal(err)
			}
			part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dtlp.Build(part, dtlp.Config{Xi: 3}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig19to23DTLPMaintenance covers Figures 19-23: index maintenance
// under one traffic snapshot (α=50%, τ=50%).
func BenchmarkFig19to23DTLPMaintenance(b *testing.B) {
	s := load(b, "NY")
	tm := workload.NewTrafficModel(0.5, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		batch, err := tm.Step(s.ds.Graph)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.index.ApplyUpdates(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig21UpdateThroughput covers Figure 21: per-update maintenance
// latency.
func BenchmarkFig21UpdateThroughput(b *testing.B) {
	s := load(b, "COL")
	g := s.ds.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := graph.EdgeID(i % g.NumEdges())
		w := g.Weight(e)*1.1 + 0.1
		if _, err := g.UpdateWeight(e, w); err != nil {
			b.Fatal(err)
		}
		if err := s.index.ApplyUpdates([]graph.WeightUpdate{{Edge: e, NewWeight: w}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig24to27Iterations covers Figures 24-27: a full KSP-DG query
// (whose cost is dominated by the number of iterations) at a larger k.
func BenchmarkFig24to27Iterations(b *testing.B) {
	s := load(b, "NY")
	engine := core.NewEngine(s.index, nil, core.Options{})
	qs := workload.NewQueryGenerator(s.ds.Graph.NumVertices(), 5).Batch(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := engine.Query(q.Source, q.Target, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig28to32Query covers Figures 28-32: single KSP-DG queries per
// dataset at the default k.
func BenchmarkFig28to32Query(b *testing.B) {
	for _, name := range workload.DatasetNames() {
		b.Run(name, func(b *testing.B) {
			s := load(b, name)
			engine := core.NewEngine(s.index, nil, core.Options{})
			qs := workload.NewQueryGenerator(s.ds.Graph.NumVertices(), 5).Batch(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := engine.Query(q.Source, q.Target, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig33to34XiTau covers Figures 33-34: query cost with a single
// bounding path per pair (the weakest ξ), where iteration counts are highest.
func BenchmarkFig33to34XiTau(b *testing.B) {
	ds, err := workload.BuiltinDataset("NY", workload.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
	if err != nil {
		b.Fatal(err)
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: 1})
	if err != nil {
		b.Fatal(err)
	}
	engine := core.NewEngine(index, nil, core.Options{})
	qs := workload.NewQueryGenerator(ds.Graph.NumVertices(), 5).Batch(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := engine.Query(q.Source, q.Target, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig35to39Baselines covers Figures 35-39: the same query answered
// by KSP-DG, FindKSP and Yen.
func BenchmarkFig35to39Baselines(b *testing.B) {
	s := load(b, "FLA")
	engine := core.NewEngine(s.index, nil, core.Options{})
	yen := baseline.NewYen(s.ds.Graph)
	find := baseline.NewFindKSP(s.ds.Graph)
	qs := workload.NewQueryGenerator(s.ds.Graph.NumVertices(), 5).Batch(64)
	b.Run("KSP-DG", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, err := engine.Query(q.Source, q.Target, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FindKSP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, err := find.Query(q.Source, q.Target, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Yen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, err := yen.Query(q.Source, q.Target, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig40to41CANDS covers Figures 40-41: CANDS query and maintenance
// versus KSP-DG's.
func BenchmarkFig40to41CANDS(b *testing.B) {
	s := load(b, "NY")
	cands, err := baseline.NewCANDS(s.ds.Graph, s.ds.DefaultZ)
	if err != nil {
		b.Fatal(err)
	}
	engine := core.NewEngine(s.index, nil, core.Options{})
	qs := workload.NewQueryGenerator(s.ds.Graph.NumVertices(), 5).Batch(64)
	b.Run("CANDS-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, err := cands.Query(q.Source, q.Target, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("KSP-DG-query-k1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, err := engine.Query(q.Source, q.Target, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	tm := workload.NewTrafficModel(0.5, 0.5, 9)
	b.Run("CANDS-maintenance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			batch, err := tm.Step(s.ds.Graph)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := cands.ApplyUpdates(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("KSP-DG-maintenance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			batch, err := tm.Step(s.ds.Graph)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := s.index.ApplyUpdates(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig42to46Scaling covers Figures 42-46: a fixed query batch
// processed on clusters of growing size.
func BenchmarkFig42to46Scaling(b *testing.B) {
	s := load(b, "CUSA")
	queries := workload.NewQueryGenerator(s.ds.Graph.NumVertices(), 5).Batch(16)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			c, err := cluster.New(s.index, cluster.Config{NumWorkers: workers, QueryBolts: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.ProcessBatch(queries, 2, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMFPTree covers the MFP-tree ablation: compressing one
// subgraph's EP-Index and answering edge lookups from the compressed forest.
func BenchmarkAblationMFPTree(b *testing.B) {
	s := load(b, "FLA")
	var sets map[graph.EdgeID][]int
	for _, sg := range s.part.Subgraphs {
		ps := s.index.SubgraphIndex(sg.ID).PathSets()
		if len(ps) > len(sets) {
			sets = ps
		}
	}
	if len(sets) == 0 {
		b.Skip("no EP-Index entries")
	}
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mfptree.Build(sets, mfptree.Config{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	forest, err := mfptree.Build(sets, mfptree.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	edges := make([]graph.EdgeID, 0, len(sets))
	for e := range sets {
		edges = append(edges, e)
	}
	b.Run("lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			forest.VisitPathsForEdge(edges[i%len(edges)], func(mfptree.PathID) {})
		}
	})
}

// BenchmarkAblationPairCache covers the Section 5.2 partial-path reuse
// ablation.
func BenchmarkAblationPairCache(b *testing.B) {
	s := load(b, "COL")
	qs := workload.NewQueryGenerator(s.ds.Graph.NumVertices(), 5).Batch(64)
	for _, disable := range []bool{false, true} {
		name := "with-reuse"
		if disable {
			name = "without-reuse"
		}
		b.Run(name, func(b *testing.B) {
			engine := core.NewEngine(s.index, nil, core.Options{DisablePairCache: disable})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := engine.Query(q.Source, q.Target, 6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentQueries measures the serve layer under the mixed regime
// the paper targets: a pool of concurrent queries answered against immutable
// index epochs while weight-update batches land in flight, each publishing a
// new epoch (and invalidating the per-query result cache).
func BenchmarkConcurrentQueries(b *testing.B) {
	ds, err := workload.BuiltinDataset("NY", workload.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
	if err != nil {
		b.Fatal(err)
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: 3})
	if err != nil {
		b.Fatal(err)
	}
	// MaxIterations keeps the rare pathological query from dominating the
	// measurement; the benchmark tracks scheduling throughput, exactness is
	// covered by internal/difftest.
	srv := serve.New(index, nil, serve.Options{Engine: core.Options{MaxIterations: 200}})
	defer srv.Close()

	qs := workload.NewQueryGenerator(ds.Graph.NumVertices(), 7).Batch(64)
	tm := workload.NewTrafficModel(0.1, 0.3, 3)

	// Background writer: one update batch every few milliseconds until the
	// benchmark stops.
	done := make(chan struct{})
	var updater sync.WaitGroup
	updater.Add(1)
	go func() {
		defer updater.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				batch, err := tm.Step(ds.Graph)
				if err != nil {
					b.Error(err)
					return
				}
				if err := srv.ApplyUpdates(batch); err != nil {
					b.Error(err)
					return
				}
			}
		}
	}()

	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := qs[int(next.Add(1))%len(qs)]
			if _, err := srv.Query(q.Source, q.Target, 4); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(done)
	updater.Wait()
	st := srv.Stats()
	b.ReportMetric(float64(st.CacheHits)/float64(max(st.QueriesServed, 1)), "cachehit/query")
	b.ReportMetric(float64(st.Epoch), "epochs")
}

// BenchmarkAblationVfragYen covers the vfrag ablation indirectly: the cost of
// enumerating bounding paths under the vfrag metric during index builds is
// dominated by Yen on subgraphs, measured here on the largest subgraph.
func BenchmarkAblationVfragYen(b *testing.B) {
	s := load(b, "NY")
	var sub *partition.Subgraph
	for _, sg := range s.part.Subgraphs {
		if sub == nil || sg.NumVertices() > sub.NumVertices() {
			sub = sg
		}
	}
	if sub == nil || len(sub.Boundary) < 2 {
		b.Skip("no suitable subgraph")
	}
	la, _ := sub.ToLocal(sub.Boundary[0])
	lb, _ := sub.ToLocal(sub.Boundary[1])
	vfrag := &shortest.Options{Weight: sub.Local.InitialWeight}
	hop := &shortest.Options{Weight: func(graph.EdgeID) float64 { return 1 }}
	b.Run("vfrag-metric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = shortest.KShortestDistinctLengths(sub.Local, la, lb, 3, 11, vfrag)
		}
	})
	b.Run("edge-count-metric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = shortest.KShortestDistinctLengths(sub.Local, la, lb, 3, 11, hop)
		}
	})
}
