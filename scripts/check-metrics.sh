#!/bin/sh
# check-metrics.sh — keep the docs/OPERATIONS.md metrics catalogue in
# lockstep with what a running kspd actually exposes on /metrics.  Boots a
# master on NY-tiny, scrapes the exposition, and compares the metric
# families against the catalogue's backticked names — both directions.
# Run from the repo root.
set -eu

tmp=$(mktemp -d)
port=${CHECK_METRICS_PORT:-8329}
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -o "$tmp/kspd" ./cmd/kspd
"$tmp/kspd" -mode master -dataset NY -scale tiny -http "127.0.0.1:$port" \
    >"$tmp/log" 2>&1 &
pid=$!

ok=0
for _ in $(seq 1 50); do
    if curl -sf "127.0.0.1:$port/metrics" >"$tmp/scrape" 2>/dev/null; then
        ok=1
        break
    fi
    sleep 0.2
done
kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null || true
pid=
if [ "$ok" -ne 1 ]; then
    echo "check-metrics: kspd never served /metrics; log:" >&2
    cat "$tmp/log" >&2
    exit 1
fi

# Families the binary exposes: one "# TYPE <name> <kind>" line each.
sed -n 's/^# TYPE \([a-z_][a-z0-9_]*\) .*/\1/p' "$tmp/scrape" | sort -u >"$tmp/binary"
if [ ! -s "$tmp/binary" ]; then
    echo "check-metrics: scrape contained no TYPE lines" >&2
    exit 1
fi

# Families the catalogue documents: backticked gateway_*/kspd_* tokens in
# table rows, label sets stripped.  A trailing * documents a prefix family
# group (e.g. gateway_inflight_*).
grep '^|' docs/OPERATIONS.md \
    | grep -o '`[a-z_][a-z0-9_{},*]*`' \
    | tr -d '`' \
    | sed 's/{[^}]*}//' \
    | grep -E '^(gateway|kspd)_' \
    | sort -u >"$tmp/docs"

# Families only present under specific deployments; absent from the smoke
# boot (single process, no replication) but still belong in the catalogue.
cat >"$tmp/conditional" <<'EOF'
kspd_workers
EOF

fail=0

# 1. Every exposed family must be documented (exact or prefix-glob match).
while read -r fam; do
    grep -qx "$fam" "$tmp/docs" && continue
    matched=0
    while read -r doc; do
        case "$doc" in
        *\*) case "$fam" in "${doc%\*}"*) matched=1 ;; esac ;;
        esac
    done <"$tmp/docs"
    if [ "$matched" -ne 1 ]; then
        echo "family $fam exposed on /metrics but missing from the docs/OPERATIONS.md catalogue" >&2
        fail=1
    fi
done <"$tmp/binary"

# 2. Every documented family must exist (conditional ones exempt; prefix
#    globs must match at least one exposed family).
while read -r doc; do
    case "$doc" in
    *\*)
        if ! grep -q "^${doc%\*}" "$tmp/binary"; then
            echo "catalogue group $doc matches nothing on /metrics" >&2
            fail=1
        fi
        ;;
    *)
        grep -qx "$doc" "$tmp/binary" && continue
        grep -qx "$doc" "$tmp/conditional" && continue
        echo "family $doc documented in the catalogue but not exposed on /metrics" >&2
        fail=1
        ;;
    esac
done <"$tmp/docs"

if [ "$fail" -ne 0 ]; then
    echo "check-metrics: FAILED" >&2
    exit 1
fi
echo "check-metrics: OK ($(wc -l <"$tmp/binary" | tr -d ' ') families match)"
