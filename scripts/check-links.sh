#!/bin/sh
# check-links.sh — verify that every relative markdown link in the committed
# documentation resolves to an existing file or directory.  External links
# (http/https/mailto) are skipped so the check runs offline and never flakes
# on network state.  Run from the repo root.
set -eu

docs="README.md ROADMAP.md CHANGES.md"
for f in docs/*.md examples/*/README.md; do
    [ -f "$f" ] && docs="$docs $f"
done

fail=0
for doc in $docs; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Pull out every](target) occurrence; tolerate multiple links per line.
    targets=$(grep -o ']([^)]*)' "$doc" | sed 's/^](//; s/)$//') || continue
    for t in $targets; do
        case "$t" in
        http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${t%%#*}          # drop intra-file anchors
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "$doc: broken link -> $t" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "check-links: FAILED" >&2
    exit 1
fi
echo "check-links: OK"
