#!/bin/sh
# check-flags.sh — keep the docs/OPERATIONS.md flag reference in lockstep with
# the kspd binary.  Fails when kspd grows a flag the docs don't mention, or
# the docs document a flag kspd no longer has.  Run from the repo root.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# `kspd -h` prints usage to stderr and exits 2; that's fine, we only want the
# flag names.  Flag lines look like "  -closures int".
go run ./cmd/kspd -h 2>"$tmp/help" || true
sed -n 's/^  -\([a-z0-9-]*\).*/\1/p' "$tmp/help" | sort -u >"$tmp/binary"

# The docs render each flag as a table row starting "| `-name` ...".
sed -n 's/^| `-\([a-z0-9-]*\)`.*/\1/p' docs/OPERATIONS.md | sort -u >"$tmp/docs"

if [ ! -s "$tmp/binary" ]; then
    echo "check-flags: could not extract any flags from 'kspd -h'" >&2
    exit 1
fi

fail=0
undocumented=$(comm -23 "$tmp/binary" "$tmp/docs")
if [ -n "$undocumented" ]; then
    echo "flags in 'kspd -h' missing from docs/OPERATIONS.md:" >&2
    echo "$undocumented" | sed 's/^/  -/' >&2
    fail=1
fi
stale=$(comm -13 "$tmp/binary" "$tmp/docs")
if [ -n "$stale" ]; then
    echo "flags documented in docs/OPERATIONS.md that kspd does not have:" >&2
    echo "$stale" | sed 's/^/  -/' >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "check-flags: FAILED" >&2
    exit 1
fi
echo "check-flags: OK ($(wc -l <"$tmp/binary" | tr -d ' ') flags match)"
