#!/bin/sh
# check-docs.sh — documentation completeness smoke, run from the repo root.
#
# 1. Every internal package must have a `// Package <name>` doc comment in at
#    least one of its files (godoc's package overview).
# 2. docs/ARCHITECTURE.md must have a `## internal/<pkg>` section for every
#    internal package, so a new package cannot land undocumented.
#
# Pure POSIX sh + grep: runs offline, no dependencies.
set -eu

fail=0

for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -qr "^// Package $pkg " "$dir" --include='*.go' 2>/dev/null &&
       ! grep -qr "^// Package $pkg$" "$dir" --include='*.go' 2>/dev/null; then
        echo "missing godoc: no '// Package $pkg' comment under $dir" >&2
        fail=1
    fi
    if ! grep -q "^## internal/$pkg" docs/ARCHITECTURE.md; then
        echo "missing docs section: no '## internal/$pkg' heading in docs/ARCHITECTURE.md" >&2
        fail=1
    fi
done

# The reverse direction: an ARCHITECTURE section about a package that no
# longer exists is stale documentation.
grep '^## internal/' docs/ARCHITECTURE.md | while read -r line; do
    pkg=${line#"## internal/"}
    pkg=${pkg%% *}
    pkg=${pkg%%[^a-z]*}
    if [ ! -d "internal/$pkg" ]; then
        echo "stale docs section: docs/ARCHITECTURE.md covers internal/$pkg which does not exist" >&2
        exit 1
    fi
done || fail=1

if [ "$fail" -ne 0 ]; then
    echo "check-docs: FAILED" >&2
    exit 1
fi
echo "check-docs: OK ($(ls -d internal/*/ | wc -l | tr -d ' ') packages documented)"
