// Navigation: the "alternative routes" scenario from the paper's
// introduction (Figure 1): a navigation service continuously answers top-k
// route queries over a city-scale road network while traffic evolves, using a
// simulated multi-worker cluster so many concurrent queries are served in
// parallel.
package main

import (
	"fmt"
	"log"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/partition"
	"kspdg/internal/workload"
)

func main() {
	// Load the scale-model New York road network.
	ds, err := workload.BuiltinDataset("NY", workload.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("road network %s: %d intersections, %d road segments\n", ds.Name, g.NumVertices(), g.NumEdges())

	part, err := partition.PartitionGraph(g, ds.DefaultZ)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	index, err := dtlp.Build(part, dtlp.Config{Xi: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DTLP index built in %v (%d subgraphs, skeleton with %d vertices)\n",
		time.Since(start).Round(time.Millisecond), part.NumSubgraphs(), index.Skeleton().NumVertices())

	// Deploy on a simulated 4-worker cluster.
	c, err := cluster.New(index, cluster.Config{NumWorkers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A navigation service: every "minute" traffic conditions change and a
	// new batch of route requests arrives.
	traffic := workload.NewTrafficModel(0.35, 0.30, 7)
	queries := workload.NewQueryGenerator(g.NumVertices(), 99)
	const k = 3
	for minute := 1; minute <= 3; minute++ {
		batch, err := traffic.Step(g)
		if err != nil {
			log.Fatal(err)
		}
		maintStart := time.Now()
		if err := c.ApplyUpdates(batch); err != nil {
			log.Fatal(err)
		}
		maint := time.Since(maintStart)

		requests := queries.Batch(40)
		qStart := time.Now()
		results, err := c.ProcessBatch(requests, k, core.Options{MaxIterations: 100})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(qStart)

		fmt.Printf("minute %d: %d road segments changed (maintenance %v); %d route requests answered in %v\n",
			minute, len(batch), maint.Round(time.Microsecond), len(requests), elapsed.Round(time.Millisecond))
		// Show the alternatives offered for the first request.
		q := requests[0]
		fmt.Printf("  alternatives for trip %d -> %d:\n", q.Source, q.Target)
		for i, p := range results[0].Paths {
			fmt.Printf("    route %d: %.0f min via %d intersections\n", i+1, p.Dist, len(p.Vertices))
		}
	}
	st := c.Stats()
	fmt.Printf("cluster: %d workers, %d queries, %d messages exchanged\n", st.Workers, st.QueriesHandled, st.MessagesSent)
}
