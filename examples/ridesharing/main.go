// Ridesharing: the driver-dispatch scenario from the paper's introduction.
// For every (driver, passenger) match the service wants a few alternative
// shortest routes so the driver can trade off travel time against the chance
// of picking up additional passengers along the way.  Matches arrive
// continuously and many must be evaluated at once, so the routes are computed
// with KSP-DG over a worker pool and the alternatives are scored.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/workload"
)

// rideRequest is one driver-passenger match to route.
type rideRequest struct {
	Driver    graph.VertexID
	Passenger graph.VertexID
	Dropoff   graph.VertexID
}

func main() {
	ds, err := workload.BuiltinDataset("COL", workload.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	part, err := partition.PartitionGraph(g, ds.DefaultZ)
	if err != nil {
		log.Fatal(err)
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: 3})
	if err != nil {
		log.Fatal(err)
	}
	c, err := cluster.New(index, cluster.Config{NumWorkers: 4})
	if err != nil {
		log.Fatal(err)
	}
	engine := c.Engine(core.Options{MaxIterations: 100})

	// Simulate a dispatch wave: 25 matches, each needing pickup and dropoff
	// legs with k=3 alternatives for the dropoff leg.
	rng := rand.New(rand.NewSource(17))
	n := g.NumVertices()
	var matches []rideRequest
	for i := 0; i < 25; i++ {
		matches = append(matches, rideRequest{
			Driver:    graph.VertexID(rng.Intn(n)),
			Passenger: graph.VertexID(rng.Intn(n)),
			Dropoff:   graph.VertexID(rng.Intn(n)),
		})
	}

	start := time.Now()
	assigned := 0
	for i, m := range matches {
		if m.Driver == m.Passenger || m.Passenger == m.Dropoff {
			continue
		}
		// Pickup leg: single best route to the passenger.
		pickup, err := engine.Query(m.Driver, m.Passenger, 1)
		if err != nil {
			log.Fatal(err)
		}
		// Trip leg: three alternatives so the driver can choose.
		trip, err := engine.Query(m.Passenger, m.Dropoff, 3)
		if err != nil {
			log.Fatal(err)
		}
		if len(pickup.Paths) == 0 || len(trip.Paths) == 0 {
			continue
		}
		assigned++
		if i < 3 {
			best := trip.Paths[0]
			detour := 0.0
			if len(trip.Paths) > 1 {
				detour = trip.Paths[len(trip.Paths)-1].Dist - best.Dist
			}
			fmt.Printf("match %d: pickup %.0f min, trip %.0f min, slowest alternative +%.0f min (%d options)\n",
				i, pickup.Paths[0].Dist, best.Dist, detour, len(trip.Paths))
		}
	}
	fmt.Printf("dispatched %d/%d matches in %v using %d workers\n",
		assigned, len(matches), time.Since(start).Round(time.Millisecond), c.NumWorkers())

	// Traffic changes between dispatch waves; the index absorbs the update
	// without recomputing any bounding path.
	traffic := workload.NewTrafficModel(0.35, 0.3, 23)
	batch, err := traffic.Step(g)
	if err != nil {
		log.Fatal(err)
	}
	maintStart := time.Now()
	if err := c.ApplyUpdates(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic update: %d segments changed, index maintained in %v\n",
		len(batch), time.Since(maintStart).Round(time.Microsecond))
}
