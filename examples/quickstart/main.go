// Quickstart: build a small dynamic road network, construct the DTLP index,
// and answer a k shortest path query with KSP-DG — the minimal end-to-end use
// of the library's public building blocks.
package main

import (
	"fmt"
	"log"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
)

func main() {
	// 1. Build a small road network: a 4x4 grid of intersections where the
	//    weight of each road segment is its travel time in minutes.
	const width, height = 4, 4
	b := graph.NewBuilder(width*height, false)
	id := func(x, y int) graph.VertexID { return graph.VertexID(y*width + x) }
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width {
				mustAdd(b, id(x, y), id(x+1, y), float64(1+(x+y)%3))
			}
			if y+1 < height {
				mustAdd(b, id(x, y), id(x, y+1), float64(2+(x*y)%3))
			}
		}
	}
	g := b.Build()

	// 2. Partition the network into subgraphs of at most 6 vertices and build
	//    the two-level DTLP index (ξ=2 bounding paths per boundary pair).
	part, err := partition.PartitionGraph(g, 6)
	if err != nil {
		log.Fatal(err)
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d vertices, %d edges, %d subgraphs, %d boundary vertices\n",
		g.NumVertices(), g.NumEdges(), part.NumSubgraphs(), len(part.BoundaryVertices()))

	// 3. Answer a query: top-3 shortest routes from the north-west corner to
	//    the south-east corner.
	engine := core.NewEngine(index, nil, core.Options{})
	res, err := engine.Query(id(0, 0), id(width-1, height-1), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 routes before traffic:")
	for i, p := range res.Paths {
		fmt.Printf("  %d. %s\n", i+1, p)
	}

	// 4. Traffic builds up on one road; the index is maintained incrementally
	//    and the next query reflects the new travel times.
	e, _ := g.EdgeBetween(id(1, 1), id(2, 1))
	batch := []graph.WeightUpdate{{Edge: e, NewWeight: 10}}
	if err := g.ApplyUpdates(batch); err != nil {
		log.Fatal(err)
	}
	if err := index.ApplyUpdates(batch); err != nil {
		log.Fatal(err)
	}
	res, err = engine.Query(id(0, 0), id(width-1, height-1), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 routes after congestion on segment (1,1)-(2,1):")
	for i, p := range res.Paths {
		fmt.Printf("  %d. %s\n", i+1, p)
	}
}

func mustAdd(b *graph.Builder, u, v graph.VertexID, w float64) {
	if _, err := b.AddEdge(u, v, w); err != nil {
		log.Fatal(err)
	}
}
