// Dynamic traffic: a head-to-head of KSP-DG against the centralized
// baselines (Yen and FindKSP) and the CANDS shortest-path index under
// continuously changing traffic — a miniature version of the paper's Section
// 6.5 comparison that can be run in seconds.
package main

import (
	"fmt"
	"log"
	"time"

	"kspdg/internal/baseline"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/partition"
	"kspdg/internal/workload"
)

func main() {
	ds, err := workload.BuiltinDataset("FLA", workload.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("dataset %s: %d vertices, %d edges\n", ds.Name, g.NumVertices(), g.NumEdges())

	// KSP-DG with its DTLP index.
	part, err := partition.PartitionGraph(g, ds.DefaultZ)
	if err != nil {
		log.Fatal(err)
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: 3})
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(index, nil, core.Options{Parallelism: 4, MaxIterations: 100})

	// Baselines.
	yen := baseline.NewYen(g)
	find := baseline.NewFindKSP(g)
	cands, err := baseline.NewCANDS(g, ds.DefaultZ)
	if err != nil {
		log.Fatal(err)
	}

	traffic := workload.NewTrafficModel(0.35, 0.3, 11)
	queries := workload.NewQueryGenerator(g.NumVertices(), 31).Batch(40)
	const k = 2

	for round := 1; round <= 2; round++ {
		batch, err := traffic.Step(g)
		if err != nil {
			log.Fatal(err)
		}
		// Index maintenance under the update batch.
		t0 := time.Now()
		if err := index.ApplyUpdates(batch); err != nil {
			log.Fatal(err)
		}
		dtlpMaint := time.Since(t0)
		t0 = time.Now()
		if err := cands.ApplyUpdates(batch); err != nil {
			log.Fatal(err)
		}
		candsMaint := time.Since(t0)
		fmt.Printf("round %d: %d edges changed; maintenance DTLP=%v CANDS=%v\n",
			round, len(batch), dtlpMaint.Round(time.Microsecond), candsMaint.Round(time.Microsecond))

		// Query batch with each algorithm.
		t0 = time.Now()
		for _, q := range queries {
			if _, err := engine.Query(q.Source, q.Target, k); err != nil {
				log.Fatal(err)
			}
		}
		kspdgTime := time.Since(t0)
		t0 = time.Now()
		for _, q := range queries {
			if _, err := find.Query(q.Source, q.Target, k); err != nil {
				log.Fatal(err)
			}
		}
		findTime := time.Since(t0)
		t0 = time.Now()
		for _, q := range queries {
			if _, err := yen.Query(q.Source, q.Target, k); err != nil {
				log.Fatal(err)
			}
		}
		yenTime := time.Since(t0)
		fmt.Printf("         %d queries (k=%d): KSP-DG=%v FindKSP=%v Yen=%v\n",
			len(queries), k, kspdgTime.Round(time.Millisecond), findTime.Round(time.Millisecond), yenTime.Round(time.Millisecond))
	}
}
